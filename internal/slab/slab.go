// Package slab implements NVAlloc's slab structure for small allocations:
// 64 KiB slab extents with a persistent header, an interleaved block
// bitmap (Section 5.1 of the paper), a volatile vslab mirror for fast
// free-block search, and the slab morphing state machine (Section 5.2)
// that crash-consistently transforms a mostly-empty slab into another
// size class while old live blocks remain co-located.
//
// Persistent layout of a slab (offsets relative to the slab base, which
// is always Size-aligned):
//
//	[0,64)                fixed header (one cache line)
//	[64,64+idxBytes)      index table region (fixed reservation, used
//	                      only while the slab is a slab_in)
//	[64+idxBytes,dataOff) block bitmap, interleaved over `stripes` stripes
//	[dataOff, Size)       blocks
//
// The index-table region is a fixed reservation in every slab so that
// morph step 2 (writing the table) never overlaps the previous bitmap:
// that is what makes the undo from a crash at flag 1 sound — the old
// bitmap is still intact. The reservation costs 1 KiB of a 64 KiB slab.
package slab

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"sync"
	"sync/atomic"

	"nvalloc/internal/bitfit"
	"nvalloc/internal/interleave"
	"nvalloc/internal/pmem"
	"nvalloc/internal/sizeclass"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// headerCRC computes the header checksum over the geometry fields only
// (magic, class, dataOff, stripes). The morph flag and the old-class
// fields are deliberately excluded: every flag transition must remain a
// single-word atomic commit (no companion CRC update that could tear
// against it), and the old fields are validated semantically by Load
// instead.
func headerCRC(class, dataOff, stripes uint32) uint32 {
	var b [16]byte
	binary.LittleEndian.PutUint32(b[0:], Magic)
	binary.LittleEndian.PutUint32(b[4:], class)
	binary.LittleEndian.PutUint32(b[8:], dataOff)
	binary.LittleEndian.PutUint32(b[12:], stripes)
	return crc32.Checksum(b[:], crcTable)
}

// Size is the slab size used throughout the paper.
const Size = 64 << 10

// Header field offsets within the fixed header line.
const (
	hMagic      = 0  // u32
	hClass      = 4  // u32 size class index
	hDataOff    = 8  // u32
	hFlag       = 12 // u32 morph step flag (see flag* below)
	hOldClass   = 16 // u32 (ClassNone when not a slab_in)
	hOldDataOff = 20 // u32
	hOldLive    = 24 // u32 index table entry count
	hStripes    = 28 // u32 bitmap stripe count
	hChecksum   = 32 // u32 CRC32C over (magic, class, dataOff, stripes)
)

// Morph flag values. Every transition is a single 8-byte-atomic header
// word update (hDataOff and hFlag share one word, so a flag commit can
// carry a data-offset change atomically with it).
const (
	flagStable = 0 // regular slab; old-class fields are meaningless
	flagStep1  = 1 // old geometry stashed; bitmap still the old class's
	flagStep2  = 2 // index table written; bitmap still the old class's
	flagSlabIn = 3 // morph complete; index table tracks live old blocks
)

// IdxCapEntries is the fixed index-table capacity: the maximum number of
// live old blocks a slab may carry into a morph.
const IdxCapEntries = 512

// idxBase/idxBytes locate the fixed index-table region.
const (
	idxBase  = pmem.LineSize
	idxBytes = IdxCapEntries * 2
)

// Magic identifies a formatted slab header.
const Magic = 0x42414C53 // "SLAB"

// bitLayout caches the interleaved bit offset and stripe of every logical
// block index for one (blocks, stripes) geometry. The mapping arithmetic
// costs two hardware divisions per lookup; the commit paths resolve a bit
// offset on every malloc and free, so they read the table instead. Tables
// are shared process-wide: the allocator only ever uses a handful of
// geometries (one per size class and stripe count), and a table is a pure
// function of its key.
type bitLayout struct {
	off    []int32 // logical block index -> bit offset in the bitmap region
	stripe []uint8 // logical block index -> stripe (stripes <= 64 fits uint8)
}

var bitLayouts sync.Map // [2]int{blocks, stripes} -> *bitLayout

// layoutFor returns the shared bit-layout table for m, building and
// registering it on first use of the geometry.
func layoutFor(blocks, stripes int, m interleave.Mapping) *bitLayout {
	key := [2]int{blocks, stripes}
	if v, ok := bitLayouts.Load(key); ok {
		return v.(*bitLayout)
	}
	l := &bitLayout{
		off:    make([]int32, blocks),
		stripe: make([]uint8, blocks),
	}
	for i := 0; i < blocks; i++ {
		l.off[i] = int32(m.BitOffset(i))
		l.stripe[i] = uint8(m.Stripe(i))
	}
	v, _ := bitLayouts.LoadOrStore(key, l)
	return v.(*bitLayout)
}

// ClassNone marks the old-class header fields as unset.
const ClassNone = 0xFFFFFFFF

// Index table entry: bit 15 = allocated, bits 0..14 = old block index.
const (
	idxAllocated = 1 << 15
	idxIndexMask = idxAllocated - 1
)

// Slab is the volatile vslab: the in-DRAM mirror of one persistent slab.
// It is reconstructed from the persistent header during recovery.
//
// A block can be in three states: free, reserved (sitting in some
// thread's tcache: unavailable to others but still free in the
// persistent bitmap), or allocated (persistent bit set). Allocated
// counts persistent allocations; Reserved counts tcache residents; the
// volatile bitmap marks both as unavailable.
type Slab struct {
	Base      pmem.PAddr
	Class     int
	BlockSize uint32
	Blocks    int
	DataOff   uint32
	Allocated int
	Reserved  int

	// Mu serializes slab-internal state (counters, volatile bits,
	// persistent bitmap read-modify-writes) across threads. Lock order:
	// arena resource before slab Mu.
	Mu sync.Mutex

	// geom is the atomically published snapshot of the slab's geometry.
	// Each snapshot is immutable; morphing (and demotion back to a
	// stable slab) installs a fresh pointer under Mu. Lock-free readers
	// resolve block indices against a snapshot and revalidate pointer
	// identity under Mu before acting on the index.
	geom atomic.Pointer[Geom]

	dev        pmem.Mem
	m          interleave.Mapping
	lay        *bitLayout // shared (blocks, stripes) bit-layout table
	bitmapBase uint32
	free       *bitfit.Bitmap // logical-index bitmap: 1 = allocated or reserved (leaf + summary)
	resBits    []uint64       // logical-index bitmap: 1 = reserved in a tcache

	// Bump-pointer fast path for freshly formatted slabs: while fresh is
	// true no block has ever been released, so the occupied blocks are
	// exactly the prefix [0, bump) and Reserve can carve [bump, bump+n)
	// without any bitmap search. Any operation that frees or force-sets a
	// bit (FreeBlock, Unreserve, AllocBlock during replay) clears fresh;
	// it is never set again for this slab.
	fresh bool
	bump  int

	// Morphing state (slab_in only).
	OldClass   int // -1 when not morphed
	OldDataOff uint32
	CntSlab    int         // live old blocks remaining
	oldIdx     map[int]int // old block index -> index table slot
	cntBlock   []uint16    // per new block: old blocks occupying it

	// Intrusive links managed by the owning arena.
	LRUPrev, LRUNext   *Slab // arena LRU list (morph candidates)
	FreePrev, FreeNext *Slab // per-class freelist of partially full slabs
	Owner              int         // arena index owning this slab
	MorphCand          atomic.Bool // queued in the arena's morph-candidate list
	Dead               bool        // released back to the large allocator
}

// Geom is an immutable snapshot of a slab's geometry, published with an
// atomic pointer so the free path can resolve a block index without
// taking the slab lock. A slab's geometry only changes under Mu (morph
// to a new class, or demotion of a slab_in back to a stable slab), and
// every change installs a *new* Geom: pointer identity is the
// revalidation token. SlabIn snapshots route to the slow path because
// old-class block membership cannot be decided geometrically (an
// old-grid-aligned address may also start a valid new-class block).
type Geom struct {
	Class     int
	BlockSize uint32
	Blocks    int
	DataOff   uint32
	SlabIn    bool
	m         interleave.Mapping
	lay       *bitLayout
}

// BlockIndex maps an address inside the slab at base to its logical
// block index under this geometry, or -1 if it is not a block start.
func (g *Geom) BlockIndex(base, addr pmem.PAddr) int {
	off := int64(addr) - int64(base) - int64(g.DataOff)
	if off < 0 || off%int64(g.BlockSize) != 0 {
		return -1
	}
	idx := int(off / int64(g.BlockSize))
	if idx >= g.Blocks {
		return -1
	}
	return idx
}

// Stripe returns the bitmap stripe of logical block idx under this
// geometry.
func (g *Geom) Stripe(idx int) int { return int(g.lay.stripe[idx]) }

// publishGeom snapshots the current geometry fields. Called while the
// slab is still private (Format/Load) or with Mu held (morph,
// demotion).
func (s *Slab) publishGeom() {
	s.geom.Store(&Geom{
		Class:     s.Class,
		BlockSize: s.BlockSize,
		Blocks:    s.Blocks,
		DataOff:   s.DataOff,
		SlabIn:    s.OldClass >= 0,
		m:         s.m,
		lay:       s.lay,
	})
}

// Geometry returns the current geometry snapshot (never nil for a slab
// produced by Format or Load).
func (s *Slab) Geometry() *Geom { return s.geom.Load() }

// geometry computes the block count, bitmap base and data offset for a
// slab of the given class. The fixed index-table reservation makes the
// layout independent of morph history.
func geometry(class, stripes int) (blocks int, bitmapBase, dataOff uint32) {
	bsize := int(sizeclass.Size(class))
	bitmapBase = uint32(idxBase + idxBytes)
	// Fixpoint: more blocks need a bigger bitmap, which lowers the data
	// offset capacity; two iterations always converge for 64 KiB slabs.
	blocks = (Size - int(bitmapBase)) / bsize
	for i := 0; i < 4; i++ {
		bm := interleave.New(blocks, 1, stripes, pmem.LineSize)
		d := (int(bitmapBase) + bm.SizeBytes() + pmem.LineSize - 1) &^ (pmem.LineSize - 1)
		nb := (Size - d) / bsize
		if nb == blocks {
			dataOff = uint32(d)
			return blocks, bitmapBase, dataOff
		}
		blocks = nb
	}
	bm := interleave.New(blocks, 1, stripes, pmem.LineSize)
	dataOff = uint32((int(bitmapBase) + bm.SizeBytes() + pmem.LineSize - 1) &^ (pmem.LineSize - 1))
	return blocks, bitmapBase, dataOff
}

// BlocksPerSlab returns how many blocks a freshly formatted slab of the
// class holds with the given stripe count.
func BlocksPerSlab(class, stripes int) int {
	b, _, _ := geometry(class, stripes)
	return b
}

// Format initializes a fresh slab of the given class over a Size-aligned
// extent at base. When persist is true the header and bitmap are flushed
// (LOG variant); the GC variant persists the header only, leaving bitmap
// persistence to post-crash GC.
func Format(dev pmem.Mem, c *pmem.Ctx, base pmem.PAddr, class, stripes int, persist bool) *Slab {
	if base%Size != 0 {
		panic(fmt.Sprintf("slab: base %#x not %d-aligned", base, Size))
	}
	blocks, bitmapBase, dataOff := geometry(class, stripes)
	m := interleave.New(blocks, 1, stripes, pmem.LineSize)
	s := &Slab{
		Base:       base,
		Class:      class,
		BlockSize:  sizeclass.Size(class),
		Blocks:     blocks,
		DataOff:    dataOff,
		dev:        dev,
		m:          m,
		lay:        layoutFor(blocks, stripes, m),
		bitmapBase: bitmapBase,
		free:       bitfit.New(blocks),
		resBits:    make([]uint64, (blocks+63)/64),
		OldClass:   -1,
		fresh:      true,
	}
	dev.WriteU32(base+hMagic, Magic)
	dev.WriteU32(base+hClass, uint32(class))
	dev.WriteU32(base+hDataOff, dataOff)
	dev.WriteU32(base+hFlag, flagStable)
	dev.WriteU32(base+hOldClass, ClassNone)
	dev.WriteU32(base+hOldDataOff, 0)
	dev.WriteU32(base+hOldLive, 0)
	dev.WriteU32(base+hStripes, uint32(stripes))
	dev.WriteU32(base+hChecksum, headerCRC(uint32(class), dataOff, uint32(stripes)))
	dev.Zero(base+pmem.PAddr(bitmapBase), int(dataOff-bitmapBase))
	c.Flush(pmem.CatMeta, base, pmem.LineSize)
	if persist {
		c.Flush(pmem.CatMeta, base+pmem.PAddr(bitmapBase), int(dataOff-bitmapBase))
	}
	c.Fence()
	s.publishGeom()
	return s
}

// Quarantine reformats the header of a damaged slab in place as a
// stable slab of class 0 with every block marked allocated, so a
// subsequent Load accepts it without ever handing out one of its
// blocks. The payload bytes are untouched: quarantining turns a slab
// that would fail recovery into a permanent leak instead of a loss.
func Quarantine(dev pmem.Mem, c *pmem.Ctx, base pmem.PAddr, stripes int) {
	base &^= Size - 1
	_, bitmapBase, dataOff := geometry(0, stripes)
	dev.WriteU32(base+hMagic, Magic)
	dev.WriteU32(base+hClass, 0)
	dev.WriteU32(base+hDataOff, dataOff)
	dev.WriteU32(base+hFlag, flagStable)
	dev.WriteU32(base+hOldClass, ClassNone)
	dev.WriteU32(base+hOldDataOff, 0)
	dev.WriteU32(base+hOldLive, 0)
	dev.WriteU32(base+hStripes, uint32(stripes))
	dev.WriteU32(base+hChecksum, headerCRC(0, dataOff, uint32(stripes)))
	// All bitmap bytes set: every mapped bit reads as allocated.
	for i := bitmapBase; i < dataOff; i++ {
		dev.WriteU8(base+pmem.PAddr(i), 0xFF)
	}
	c.Flush(pmem.CatMeta, base, pmem.LineSize)
	c.Flush(pmem.CatMeta, base+pmem.PAddr(bitmapBase), int(dataOff-bitmapBase))
	c.Fence()
}

// Stripes returns the bitmap stripe count.
func (s *Slab) Stripes() int { return s.m.Stripes() }

// Stripe returns the bit stripe (and thus metadata cache line group) of
// logical block idx; the tcache uses it to pick a sub-tcache.
func (s *Slab) Stripe(idx int) int { return int(s.lay.stripe[idx]) }

// BlockAddr returns the persistent address of block idx.
func (s *Slab) BlockAddr(idx int) pmem.PAddr {
	return s.Base + pmem.PAddr(s.DataOff) + pmem.PAddr(idx)*pmem.PAddr(s.BlockSize)
}

// BlockIndex maps an address inside the slab's data region to its logical
// block index, or -1 if it is not a block start.
func (s *Slab) BlockIndex(addr pmem.PAddr) int {
	off := int64(addr) - int64(s.Base) - int64(s.DataOff)
	if off < 0 || off%int64(s.BlockSize) != 0 {
		return -1
	}
	idx := int(off / int64(s.BlockSize))
	if idx >= s.Blocks {
		return -1
	}
	return idx
}

func (s *Slab) bitTest(idx int) bool { return s.free.Test(idx) }

// BlockAllocated reports whether block idx is marked unavailable in the
// volatile bitmap (allocated, or reserved in a tcache).
func (s *Slab) BlockAllocated(idx int) bool { return s.bitTest(idx) }

// BlockReserved reports whether block idx currently sits in a tcache
// (unavailable but not a live object).
func (s *Slab) BlockReserved(idx int) bool {
	return s.resBits[idx/64]&(1<<(idx%64)) != 0
}

// setPersistentBit updates one interleaved bitmap bit in PM and optionally
// flushes its cache line (attributed to FlushMeta).
func (s *Slab) setPersistentBit(c *pmem.Ctx, idx int, val, persist bool) {
	s.writePersistentBit(c, idx, val, persist, true)
}

// writePersistentBit is setPersistentBit with the trailing fence under
// caller control: batched clears flush each line but fence once.
func (s *Slab) writePersistentBit(c *pmem.Ctx, idx int, val, persist, fence bool) {
	off := int(s.lay.off[idx])
	addr := s.Base + pmem.PAddr(s.bitmapBase) + pmem.PAddr(off/8)
	b := s.dev.ReadU8(addr)
	if val {
		b |= 1 << (off % 8)
	} else {
		b &^= 1 << (off % 8)
	}
	s.dev.WriteU8(addr, b)
	if persist {
		c.FlushLineOf(pmem.CatMeta, addr)
		if fence {
			c.Fence()
		}
	}
}

// AllocBlock marks block idx allocated (volatile + persistent bit).
// persist controls whether the bitmap line is flushed (LOG) or deferred
// to post-crash GC.
func (s *Slab) AllocBlock(c *pmem.Ctx, idx int, persist bool) {
	if s.bitTest(idx) {
		panic(fmt.Sprintf("slab %#x: double allocation of block %d", s.Base, idx))
	}
	s.free.Set(idx)
	s.fresh = false // idx may sit above bump; the prefix invariant is gone
	s.Allocated++
	s.setPersistentBit(c, idx, true, persist)
}

// FreeBlock marks block idx free (volatile + persistent bit).
func (s *Slab) FreeBlock(c *pmem.Ctx, idx int, persist bool) {
	if !s.bitTest(idx) {
		panic(fmt.Sprintf("slab %#x: double free of block %d", s.Base, idx))
	}
	s.free.Clear(idx)
	s.fresh = false
	s.Allocated--
	s.setPersistentBit(c, idx, false, persist)
}

// FreeBlockBatched is FreeBlock without the trailing fence: the
// remote-free drain clears a whole batch of bits and fences once after
// the last flush. Each bit's line is still flushed individually, so a
// crash mid-batch persists a prefix — safe, because every cleared bit
// is covered by an already-fenced WAL entry that replay reapplies.
func (s *Slab) FreeBlockBatched(c *pmem.Ctx, idx int, persist bool) {
	if !s.bitTest(idx) {
		panic(fmt.Sprintf("slab %#x: double free of block %d", s.Base, idx))
	}
	s.free.Clear(idx)
	s.fresh = false
	s.Allocated--
	s.writePersistentBit(c, idx, false, persist, false)
}

// Reserve takes up to n free blocks out of the volatile bitmap without
// touching persistent state, appending their indices to out. Reserved
// blocks live in a tcache: unavailable to other threads, still free on
// media (a crash loses nothing — they were never handed to the user).
//
// Fresh slabs take the bump-pointer path: the next n indices are carved
// off the never-touched tail with one word-wise SetRange, no search.
// Otherwise each block is found with the two-level first-fit (two
// TrailingZeros64 ops per block). Both paths hand out the lowest free
// indices, so they are observationally identical to the old linear scan.
func (s *Slab) Reserve(n int, out []int) []int {
	if s.fresh {
		k := s.Blocks - s.bump
		if k > n {
			k = n
		}
		if k > 0 {
			lo := s.bump
			s.free.SetRange(lo, lo+k)
			setBitRange(s.resBits, lo, lo+k)
			for i := 0; i < k; i++ {
				out = append(out, lo+i)
			}
			s.bump += k
			s.Reserved += k
			n -= k
		}
		return out
	}
	for ; n > 0; n-- {
		idx := s.free.FirstFree()
		if idx < 0 {
			break
		}
		s.free.Set(idx)
		s.resBits[idx/64] |= 1 << (idx % 64)
		s.Reserved++
		out = append(out, idx)
	}
	return out
}

// setBitRange sets bits [lo, hi) of a plain word slice word-at-a-time.
func setBitRange(words []uint64, lo, hi int) {
	for lo < hi {
		w := lo / 64
		m := ^uint64(0) << (lo % 64)
		if end := (w + 1) * 64; hi < end {
			m &= 1<<(hi%64) - 1
			lo = hi
		} else {
			lo = end
		}
		words[w] |= m
	}
}

// Unreserve returns a reserved block to the free state (tcache drain).
func (s *Slab) Unreserve(idx int) {
	s.free.Clear(idx)
	s.fresh = false
	s.resBits[idx/64] &^= 1 << (idx % 64)
	s.Reserved--
}

// CommitAlloc turns a reserved block into an allocated one: the
// persistent bitmap bit is set and, when persist is true, flushed. This
// is the per-malloc metadata write whose cache line the interleaved
// mapping varies.
func (s *Slab) CommitAlloc(c *pmem.Ctx, idx int, persist bool) {
	s.resBits[idx/64] &^= 1 << (idx % 64)
	s.Reserved--
	s.Allocated++
	s.setPersistentBit(c, idx, true, persist)
}

// CommitAllocBatched is CommitAlloc without the trailing fence: the
// caller merges it with the fence of an adjacent metadata write (the
// covering WAL entry, flushed immediately before) into one trailing
// fence per operation. Durability still follows flush order, so at any
// crash boundary the bit is never persistent without its entry.
func (s *Slab) CommitAllocBatched(c *pmem.Ctx, idx int, persist bool) {
	s.resBits[idx/64] &^= 1 << (idx % 64)
	s.Reserved--
	s.Allocated++
	s.writePersistentBit(c, idx, true, persist, false)
}

// CommitFreeToCache clears the persistent bit of an allocated block that
// moves into a tcache (it stays volatile-reserved).
func (s *Slab) CommitFreeToCache(c *pmem.Ctx, idx int, persist bool) {
	s.resBits[idx/64] |= 1 << (idx % 64)
	s.Allocated--
	s.Reserved++
	s.setPersistentBit(c, idx, false, persist)
}

// CommitFreeToCacheBatched is CommitFreeToCache with the trailing fence
// left to the caller (see CommitAllocBatched).
func (s *Slab) CommitFreeToCacheBatched(c *pmem.Ctx, idx int, persist bool) {
	s.resBits[idx/64] |= 1 << (idx % 64)
	s.Allocated--
	s.Reserved++
	s.writePersistentBit(c, idx, false, persist, false)
}

// SyncBitmap rewrites the whole persistent bitmap from the volatile one
// and flushes it (used at clean shutdown by the GC variant, whose
// runtime path never flushes bitmap updates). Reserved blocks must have
// been drained first.
//
// The image is staged word-at-a-time through the device's bulk view —
// zero the region, then OR in one interleaved bit per occupied block —
// instead of one read-modify-write device call per block. Shutdown is
// single-threaded, so the bulk view cannot race a concurrent line flush.
func (s *Slab) SyncBitmap(c *pmem.Ctx) {
	buf := s.dev.Bytes(s.Base+pmem.PAddr(s.bitmapBase), int(s.DataOff-s.bitmapBase))
	for i := range buf {
		buf[i] = 0
	}
	for w, word := range s.free.Words() {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << bit
			off := s.m.BitOffset(w*64 + bit)
			buf[off/8] |= 1 << (off % 8)
		}
	}
	c.Flush(pmem.CatMeta, s.Base+pmem.PAddr(s.bitmapBase), int(s.DataOff-s.bitmapBase))
	c.Fence()
}

// FreeCount returns the number of blocks neither allocated nor reserved.
func (s *Slab) FreeCount() int { return s.Blocks - s.Allocated - s.Reserved }

// Usage returns the occupancy ratio used by the morphing policy
// (reserved blocks count as occupied).
func (s *Slab) Usage() float64 {
	if s.Blocks == 0 {
		return 1
	}
	return float64(s.Allocated+s.Reserved) / float64(s.Blocks)
}

// UsageBelowMille reports whether occupancy is strictly below
// mille/1000, in integer arithmetic — the hot-path form of
// Usage() < threshold, sparing the free paths a float division per op.
// An empty geometry (Blocks == 0) reads as fully occupied, like Usage.
func (s *Slab) UsageBelowMille(mille int) bool {
	return (s.Allocated+s.Reserved)*1000 < mille*s.Blocks
}

// IsSlabIn reports whether the slab still holds old-class blocks.
func (s *Slab) IsSlabIn() bool { return s.OldClass >= 0 && s.CntSlab > 0 }
