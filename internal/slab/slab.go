// Package slab implements NVAlloc's slab structure for small allocations:
// 64 KiB slab extents with a persistent header, an interleaved block
// bitmap (Section 5.1 of the paper), a volatile vslab mirror for fast
// free-block search, and the slab morphing state machine (Section 5.2)
// that crash-consistently transforms a mostly-empty slab into another
// size class while old live blocks remain co-located.
//
// Persistent layout of a slab (offsets relative to the slab base, which
// is always Size-aligned):
//
//	[0,64)                fixed header (one cache line)
//	[64,64+idxBytes)      index table region (fixed reservation, used
//	                      only while the slab is a slab_in)
//	[64+idxBytes,dataOff) block bitmap, interleaved over `stripes` stripes
//	[dataOff, Size)       blocks
//
// The index-table region is a fixed reservation in every slab so that
// morph step 2 (writing the table) never overlaps the previous bitmap:
// that is what makes the undo from a crash at flag 1 sound — the old
// bitmap is still intact. The reservation costs 1 KiB of a 64 KiB slab.
package slab

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"sync"
	"sync/atomic"

	"nvalloc/internal/interleave"
	"nvalloc/internal/pmem"
	"nvalloc/internal/sizeclass"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// headerCRC computes the header checksum over the geometry fields only
// (magic, class, dataOff, stripes). The morph flag and the old-class
// fields are deliberately excluded: every flag transition must remain a
// single-word atomic commit (no companion CRC update that could tear
// against it), and the old fields are validated semantically by Load
// instead.
func headerCRC(class, dataOff, stripes uint32) uint32 {
	var b [16]byte
	binary.LittleEndian.PutUint32(b[0:], Magic)
	binary.LittleEndian.PutUint32(b[4:], class)
	binary.LittleEndian.PutUint32(b[8:], dataOff)
	binary.LittleEndian.PutUint32(b[12:], stripes)
	return crc32.Checksum(b[:], crcTable)
}

// Size is the slab size used throughout the paper.
const Size = 64 << 10

// Header field offsets within the fixed header line.
const (
	hMagic      = 0  // u32
	hClass      = 4  // u32 size class index
	hDataOff    = 8  // u32
	hFlag       = 12 // u32 morph step flag (see flag* below)
	hOldClass   = 16 // u32 (ClassNone when not a slab_in)
	hOldDataOff = 20 // u32
	hOldLive    = 24 // u32 index table entry count
	hStripes    = 28 // u32 bitmap stripe count
	hChecksum   = 32 // u32 CRC32C over (magic, class, dataOff, stripes)
)

// Morph flag values. Every transition is a single 8-byte-atomic header
// word update (hDataOff and hFlag share one word, so a flag commit can
// carry a data-offset change atomically with it).
const (
	flagStable = 0 // regular slab; old-class fields are meaningless
	flagStep1  = 1 // old geometry stashed; bitmap still the old class's
	flagStep2  = 2 // index table written; bitmap still the old class's
	flagSlabIn = 3 // morph complete; index table tracks live old blocks
)

// IdxCapEntries is the fixed index-table capacity: the maximum number of
// live old blocks a slab may carry into a morph.
const IdxCapEntries = 512

// idxBase/idxBytes locate the fixed index-table region.
const (
	idxBase  = pmem.LineSize
	idxBytes = IdxCapEntries * 2
)

// Magic identifies a formatted slab header.
const Magic = 0x42414C53 // "SLAB"

// ClassNone marks the old-class header fields as unset.
const ClassNone = 0xFFFFFFFF

// Index table entry: bit 15 = allocated, bits 0..14 = old block index.
const (
	idxAllocated = 1 << 15
	idxIndexMask = idxAllocated - 1
)

// Slab is the volatile vslab: the in-DRAM mirror of one persistent slab.
// It is reconstructed from the persistent header during recovery.
//
// A block can be in three states: free, reserved (sitting in some
// thread's tcache: unavailable to others but still free in the
// persistent bitmap), or allocated (persistent bit set). Allocated
// counts persistent allocations; Reserved counts tcache residents; the
// volatile bitmap marks both as unavailable.
type Slab struct {
	Base      pmem.PAddr
	Class     int
	BlockSize uint32
	Blocks    int
	DataOff   uint32
	Allocated int
	Reserved  int

	// Mu serializes slab-internal state (counters, volatile bits,
	// persistent bitmap read-modify-writes) across threads. Lock order:
	// arena resource before slab Mu.
	Mu sync.Mutex

	// geom is the atomically published snapshot of the slab's geometry.
	// Each snapshot is immutable; morphing (and demotion back to a
	// stable slab) installs a fresh pointer under Mu. Lock-free readers
	// resolve block indices against a snapshot and revalidate pointer
	// identity under Mu before acting on the index.
	geom atomic.Pointer[Geom]

	dev        *pmem.Device
	m          interleave.Mapping
	bitmapBase uint32
	freeBits   []uint64 // logical-index bitmap: 1 = allocated or reserved
	resBits    []uint64 // logical-index bitmap: 1 = reserved in a tcache

	// Morphing state (slab_in only).
	OldClass   int // -1 when not morphed
	OldDataOff uint32
	CntSlab    int         // live old blocks remaining
	oldIdx     map[int]int // old block index -> index table slot
	cntBlock   []uint16    // per new block: old blocks occupying it

	// Intrusive links managed by the owning arena.
	LRUPrev, LRUNext   *Slab // arena LRU list (morph candidates)
	FreePrev, FreeNext *Slab // per-class freelist of partially full slabs
	Owner              int   // arena index owning this slab
	MorphCand          bool  // queued in the arena's morph-candidate list
	Dead               bool  // released back to the large allocator
}

// Geom is an immutable snapshot of a slab's geometry, published with an
// atomic pointer so the free path can resolve a block index without
// taking the slab lock. A slab's geometry only changes under Mu (morph
// to a new class, or demotion of a slab_in back to a stable slab), and
// every change installs a *new* Geom: pointer identity is the
// revalidation token. SlabIn snapshots route to the slow path because
// old-class block membership cannot be decided geometrically (an
// old-grid-aligned address may also start a valid new-class block).
type Geom struct {
	Class     int
	BlockSize uint32
	Blocks    int
	DataOff   uint32
	SlabIn    bool
	m         interleave.Mapping
}

// BlockIndex maps an address inside the slab at base to its logical
// block index under this geometry, or -1 if it is not a block start.
func (g *Geom) BlockIndex(base, addr pmem.PAddr) int {
	off := int64(addr) - int64(base) - int64(g.DataOff)
	if off < 0 || off%int64(g.BlockSize) != 0 {
		return -1
	}
	idx := int(off / int64(g.BlockSize))
	if idx >= g.Blocks {
		return -1
	}
	return idx
}

// Stripe returns the bitmap stripe of logical block idx under this
// geometry.
func (g *Geom) Stripe(idx int) int { return g.m.Stripe(idx) }

// publishGeom snapshots the current geometry fields. Called while the
// slab is still private (Format/Load) or with Mu held (morph,
// demotion).
func (s *Slab) publishGeom() {
	s.geom.Store(&Geom{
		Class:     s.Class,
		BlockSize: s.BlockSize,
		Blocks:    s.Blocks,
		DataOff:   s.DataOff,
		SlabIn:    s.OldClass >= 0,
		m:         s.m,
	})
}

// Geometry returns the current geometry snapshot (never nil for a slab
// produced by Format or Load).
func (s *Slab) Geometry() *Geom { return s.geom.Load() }

// geometry computes the block count, bitmap base and data offset for a
// slab of the given class. The fixed index-table reservation makes the
// layout independent of morph history.
func geometry(class, stripes int) (blocks int, bitmapBase, dataOff uint32) {
	bsize := int(sizeclass.Size(class))
	bitmapBase = uint32(idxBase + idxBytes)
	// Fixpoint: more blocks need a bigger bitmap, which lowers the data
	// offset capacity; two iterations always converge for 64 KiB slabs.
	blocks = (Size - int(bitmapBase)) / bsize
	for i := 0; i < 4; i++ {
		bm := interleave.New(blocks, 1, stripes, pmem.LineSize)
		d := (int(bitmapBase) + bm.SizeBytes() + pmem.LineSize - 1) &^ (pmem.LineSize - 1)
		nb := (Size - d) / bsize
		if nb == blocks {
			dataOff = uint32(d)
			return blocks, bitmapBase, dataOff
		}
		blocks = nb
	}
	bm := interleave.New(blocks, 1, stripes, pmem.LineSize)
	dataOff = uint32((int(bitmapBase) + bm.SizeBytes() + pmem.LineSize - 1) &^ (pmem.LineSize - 1))
	return blocks, bitmapBase, dataOff
}

// BlocksPerSlab returns how many blocks a freshly formatted slab of the
// class holds with the given stripe count.
func BlocksPerSlab(class, stripes int) int {
	b, _, _ := geometry(class, stripes)
	return b
}

// Format initializes a fresh slab of the given class over a Size-aligned
// extent at base. When persist is true the header and bitmap are flushed
// (LOG variant); the GC variant persists the header only, leaving bitmap
// persistence to post-crash GC.
func Format(dev *pmem.Device, c *pmem.Ctx, base pmem.PAddr, class, stripes int, persist bool) *Slab {
	if base%Size != 0 {
		panic(fmt.Sprintf("slab: base %#x not %d-aligned", base, Size))
	}
	blocks, bitmapBase, dataOff := geometry(class, stripes)
	s := &Slab{
		Base:       base,
		Class:      class,
		BlockSize:  sizeclass.Size(class),
		Blocks:     blocks,
		DataOff:    dataOff,
		dev:        dev,
		m:          interleave.New(blocks, 1, stripes, pmem.LineSize),
		bitmapBase: bitmapBase,
		freeBits:   make([]uint64, (blocks+63)/64),
		resBits:    make([]uint64, (blocks+63)/64),
		OldClass:   -1,
	}
	dev.WriteU32(base+hMagic, Magic)
	dev.WriteU32(base+hClass, uint32(class))
	dev.WriteU32(base+hDataOff, dataOff)
	dev.WriteU32(base+hFlag, flagStable)
	dev.WriteU32(base+hOldClass, ClassNone)
	dev.WriteU32(base+hOldDataOff, 0)
	dev.WriteU32(base+hOldLive, 0)
	dev.WriteU32(base+hStripes, uint32(stripes))
	dev.WriteU32(base+hChecksum, headerCRC(uint32(class), dataOff, uint32(stripes)))
	dev.Zero(base+pmem.PAddr(bitmapBase), int(dataOff-bitmapBase))
	c.Flush(pmem.CatMeta, base, pmem.LineSize)
	if persist {
		c.Flush(pmem.CatMeta, base+pmem.PAddr(bitmapBase), int(dataOff-bitmapBase))
	}
	c.Fence()
	s.publishGeom()
	return s
}

// Quarantine reformats the header of a damaged slab in place as a
// stable slab of class 0 with every block marked allocated, so a
// subsequent Load accepts it without ever handing out one of its
// blocks. The payload bytes are untouched: quarantining turns a slab
// that would fail recovery into a permanent leak instead of a loss.
func Quarantine(dev *pmem.Device, c *pmem.Ctx, base pmem.PAddr, stripes int) {
	base &^= Size - 1
	_, bitmapBase, dataOff := geometry(0, stripes)
	dev.WriteU32(base+hMagic, Magic)
	dev.WriteU32(base+hClass, 0)
	dev.WriteU32(base+hDataOff, dataOff)
	dev.WriteU32(base+hFlag, flagStable)
	dev.WriteU32(base+hOldClass, ClassNone)
	dev.WriteU32(base+hOldDataOff, 0)
	dev.WriteU32(base+hOldLive, 0)
	dev.WriteU32(base+hStripes, uint32(stripes))
	dev.WriteU32(base+hChecksum, headerCRC(0, dataOff, uint32(stripes)))
	// All bitmap bytes set: every mapped bit reads as allocated.
	for i := bitmapBase; i < dataOff; i++ {
		dev.WriteU8(base+pmem.PAddr(i), 0xFF)
	}
	c.Flush(pmem.CatMeta, base, pmem.LineSize)
	c.Flush(pmem.CatMeta, base+pmem.PAddr(bitmapBase), int(dataOff-bitmapBase))
	c.Fence()
}

// Stripes returns the bitmap stripe count.
func (s *Slab) Stripes() int { return s.m.Stripes() }

// Stripe returns the bit stripe (and thus metadata cache line group) of
// logical block idx; the tcache uses it to pick a sub-tcache.
func (s *Slab) Stripe(idx int) int { return s.m.Stripe(idx) }

// BlockAddr returns the persistent address of block idx.
func (s *Slab) BlockAddr(idx int) pmem.PAddr {
	return s.Base + pmem.PAddr(s.DataOff) + pmem.PAddr(idx)*pmem.PAddr(s.BlockSize)
}

// BlockIndex maps an address inside the slab's data region to its logical
// block index, or -1 if it is not a block start.
func (s *Slab) BlockIndex(addr pmem.PAddr) int {
	off := int64(addr) - int64(s.Base) - int64(s.DataOff)
	if off < 0 || off%int64(s.BlockSize) != 0 {
		return -1
	}
	idx := int(off / int64(s.BlockSize))
	if idx >= s.Blocks {
		return -1
	}
	return idx
}

func (s *Slab) bitTest(idx int) bool { return s.freeBits[idx/64]&(1<<(idx%64)) != 0 }

// BlockAllocated reports whether block idx is marked unavailable in the
// volatile bitmap (allocated, or reserved in a tcache).
func (s *Slab) BlockAllocated(idx int) bool { return s.bitTest(idx) }

// BlockReserved reports whether block idx currently sits in a tcache
// (unavailable but not a live object).
func (s *Slab) BlockReserved(idx int) bool {
	return s.resBits[idx/64]&(1<<(idx%64)) != 0
}

// setPersistentBit updates one interleaved bitmap bit in PM and optionally
// flushes its cache line (attributed to FlushMeta).
func (s *Slab) setPersistentBit(c *pmem.Ctx, idx int, val, persist bool) {
	s.writePersistentBit(c, idx, val, persist, true)
}

// writePersistentBit is setPersistentBit with the trailing fence under
// caller control: batched clears flush each line but fence once.
func (s *Slab) writePersistentBit(c *pmem.Ctx, idx int, val, persist, fence bool) {
	off := s.m.BitOffset(idx)
	addr := s.Base + pmem.PAddr(s.bitmapBase) + pmem.PAddr(off/8)
	b := s.dev.ReadU8(addr)
	if val {
		b |= 1 << (off % 8)
	} else {
		b &^= 1 << (off % 8)
	}
	s.dev.WriteU8(addr, b)
	if persist {
		c.Flush(pmem.CatMeta, addr, 1)
		if fence {
			c.Fence()
		}
	}
}

// AllocBlock marks block idx allocated (volatile + persistent bit).
// persist controls whether the bitmap line is flushed (LOG) or deferred
// to post-crash GC.
func (s *Slab) AllocBlock(c *pmem.Ctx, idx int, persist bool) {
	if s.bitTest(idx) {
		panic(fmt.Sprintf("slab %#x: double allocation of block %d", s.Base, idx))
	}
	s.freeBits[idx/64] |= 1 << (idx % 64)
	s.Allocated++
	s.setPersistentBit(c, idx, true, persist)
}

// FreeBlock marks block idx free (volatile + persistent bit).
func (s *Slab) FreeBlock(c *pmem.Ctx, idx int, persist bool) {
	if !s.bitTest(idx) {
		panic(fmt.Sprintf("slab %#x: double free of block %d", s.Base, idx))
	}
	s.freeBits[idx/64] &^= 1 << (idx % 64)
	s.Allocated--
	s.setPersistentBit(c, idx, false, persist)
}

// FreeBlockBatched is FreeBlock without the trailing fence: the
// remote-free drain clears a whole batch of bits and fences once after
// the last flush. Each bit's line is still flushed individually, so a
// crash mid-batch persists a prefix — safe, because every cleared bit
// is covered by an already-fenced WAL entry that replay reapplies.
func (s *Slab) FreeBlockBatched(c *pmem.Ctx, idx int, persist bool) {
	if !s.bitTest(idx) {
		panic(fmt.Sprintf("slab %#x: double free of block %d", s.Base, idx))
	}
	s.freeBits[idx/64] &^= 1 << (idx % 64)
	s.Allocated--
	s.writePersistentBit(c, idx, false, persist, false)
}

// Reserve takes up to n free blocks out of the volatile bitmap without
// touching persistent state, appending their indices to out. Reserved
// blocks live in a tcache: unavailable to other threads, still free on
// media (a crash loses nothing — they were never handed to the user).
func (s *Slab) Reserve(n int, out []int) []int {
	for w := 0; w < len(s.freeBits) && n > 0; w++ {
		m := ^s.freeBits[w]
		if w == len(s.freeBits)-1 && s.Blocks%64 != 0 {
			m &= 1<<(s.Blocks%64) - 1
		}
		for m != 0 && n > 0 {
			bit := bits.TrailingZeros64(m)
			m &^= 1 << bit
			idx := w*64 + bit
			s.freeBits[idx/64] |= 1 << (idx % 64)
			s.resBits[idx/64] |= 1 << (idx % 64)
			s.Reserved++
			out = append(out, idx)
			n--
		}
	}
	return out
}

// Unreserve returns a reserved block to the free state (tcache drain).
func (s *Slab) Unreserve(idx int) {
	s.freeBits[idx/64] &^= 1 << (idx % 64)
	s.resBits[idx/64] &^= 1 << (idx % 64)
	s.Reserved--
}

// CommitAlloc turns a reserved block into an allocated one: the
// persistent bitmap bit is set and, when persist is true, flushed. This
// is the per-malloc metadata write whose cache line the interleaved
// mapping varies.
func (s *Slab) CommitAlloc(c *pmem.Ctx, idx int, persist bool) {
	s.resBits[idx/64] &^= 1 << (idx % 64)
	s.Reserved--
	s.Allocated++
	s.setPersistentBit(c, idx, true, persist)
}

// CommitFreeToCache clears the persistent bit of an allocated block that
// moves into a tcache (it stays volatile-reserved).
func (s *Slab) CommitFreeToCache(c *pmem.Ctx, idx int, persist bool) {
	s.resBits[idx/64] |= 1 << (idx % 64)
	s.Allocated--
	s.Reserved++
	s.setPersistentBit(c, idx, false, persist)
}

// SyncBitmap rewrites the whole persistent bitmap from the volatile one
// and flushes it (used at clean shutdown by the GC variant, whose
// runtime path never flushes bitmap updates). Reserved blocks must have
// been drained first.
func (s *Slab) SyncBitmap(c *pmem.Ctx) {
	for idx := 0; idx < s.Blocks; idx++ {
		s.setPersistentBit(c, idx, s.bitTest(idx), false)
	}
	c.Flush(pmem.CatMeta, s.Base+pmem.PAddr(s.bitmapBase), int(s.DataOff-s.bitmapBase))
	c.Fence()
}

// FreeCount returns the number of blocks neither allocated nor reserved.
func (s *Slab) FreeCount() int { return s.Blocks - s.Allocated - s.Reserved }

// Usage returns the occupancy ratio used by the morphing policy
// (reserved blocks count as occupied).
func (s *Slab) Usage() float64 {
	if s.Blocks == 0 {
		return 1
	}
	return float64(s.Allocated+s.Reserved) / float64(s.Blocks)
}

// IsSlabIn reports whether the slab still holds old-class blocks.
func (s *Slab) IsSlabIn() bool { return s.OldClass >= 0 && s.CntSlab > 0 }
