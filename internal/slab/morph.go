package slab

import (
	"fmt"
	"sort"

	"nvalloc/internal/bitfit"
	"nvalloc/internal/interleave"
	"nvalloc/internal/pmem"
	"nvalloc/internal/sizeclass"
)

// CanMorphTo reports whether the slab can be transformed to newClass
// without the new metadata region (header + index table + new bitmap)
// overlapping any live block, and without exceeding the index table's
// 15-bit block-index capacity.
func (s *Slab) CanMorphTo(newClass int) bool {
	if s.OldClass >= 0 || newClass == s.Class {
		return false
	}
	// Blocks sitting in tcaches are volatile-reserved; morphing would
	// reassign them, so a slab with cached blocks is not a candidate.
	if s.Reserved > 0 {
		return false
	}
	live := s.liveIndices()
	if len(live) > IdxCapEntries {
		return false
	}
	_, _, newDataOff := geometry(newClass, s.m.Stripes())
	for _, idx := range live {
		if idx > int(idxIndexMask) {
			return false
		}
		if uint32(idx)*s.BlockSize+s.DataOff < newDataOff {
			return false
		}
	}
	return true
}

func (s *Slab) liveIndices() []int {
	live := make([]int, 0, s.Allocated)
	for idx := 0; idx < s.Blocks; idx++ {
		if s.bitTest(idx) {
			live = append(live, idx)
		}
	}
	return live
}

func (s *Slab) persistFlag(c *pmem.Ctx, flag uint32, persist bool) {
	// The flag word carries its own 16-bit CRC (it is excluded from the
	// header checksum so that morph commits stay single-word atomic): a
	// flipped flag bit must read as corruption, not as a phantom
	// in-flight morph whose "undo" would destroy the live geometry.
	s.dev.WriteU32(s.Base+hFlag, pmem.SealU32(flag))
	if persist {
		c.Flush(pmem.CatMeta, s.Base+hFlag, 4)
		c.Fence()
	}
}

// MorphTo transforms the slab to newClass following the paper's three
// crash-consistent steps, each sealed by an atomic flag update:
//
//	step 1: persist old_size_class and old_data_offset (flag 1)
//	step 2: persist the index table of live old blocks (flag 2)
//	step 3: persist the new size_class, data_offset, checksum and
//	        bitmap, then set flag 3 (slab_in)
//
// A crash with flag 1 or 2 is undone by Load; flag 3 is the completed
// transform. Every flag transition is a single 8-byte-atomic word
// update (the flag shares its word with hDataOff, so the commit carries
// the geometry switch atomically).
func (s *Slab) MorphTo(c *pmem.Ctx, newClass int, persist bool) error {
	if !s.CanMorphTo(newClass) {
		return fmt.Errorf("slab %#x: cannot morph class %d -> %d", s.Base, s.Class, newClass)
	}
	live := s.liveIndices()
	oldClass, oldDataOff, oldSize := s.Class, s.DataOff, s.BlockSize

	// Step 1: stash the original geometry.
	s.dev.WriteU32(s.Base+hOldClass, uint32(oldClass))
	s.dev.WriteU32(s.Base+hOldDataOff, oldDataOff)
	s.dev.WriteU32(s.Base+hOldLive, uint32(len(live)))
	if persist {
		c.Flush(pmem.CatMeta, s.Base, pmem.LineSize)
	}
	s.persistFlag(c, 1, persist)

	// Step 2: write the index table (live old blocks, state allocated) and
	// zero the remaining slots, so stale entries from an earlier slab_in
	// incarnation can never resurface as phantom live blocks.
	for slot, idx := range live {
		s.dev.WriteU16(s.Base+pmem.PAddr(idxBase+2*slot), uint16(idx)|idxAllocated)
	}
	s.dev.Zero(s.Base+pmem.PAddr(idxBase+2*len(live)), idxBytes-2*len(live))
	if persist {
		c.Flush(pmem.CatMeta, s.Base+idxBase, idxBytes)
	}
	s.persistFlag(c, 2, persist)

	// Step 3: install the new geometry and bitmap.
	blocks, bitmapBase, dataOff := geometry(newClass, s.m.Stripes())
	newBlockSize := sizeclass.Size(newClass)
	m := interleave.New(blocks, 1, s.m.Stripes(), pmem.LineSize)
	s.dev.Zero(s.Base+pmem.PAddr(bitmapBase), int(dataOff-bitmapBase))

	cntBlock := make([]uint16, blocks)
	oldIdx := make(map[int]int, len(live))
	free := bitfit.New(blocks)
	allocated := 0
	for slot, idx := range live {
		oldIdx[idx] = slot
		lo := int64(oldDataOff) + int64(idx)*int64(oldSize)
		hi := lo + int64(oldSize) - 1
		nbLo := (lo - int64(dataOff)) / int64(newBlockSize)
		nbHi := (hi - int64(dataOff)) / int64(newBlockSize)
		for nb := nbLo; nb <= nbHi && nb < int64(blocks); nb++ {
			if nb < 0 {
				continue
			}
			if cntBlock[nb] == 0 {
				free.Set(int(nb))
				allocated++
			}
			cntBlock[nb]++
		}
	}
	// Persist the new bitmap image from the volatile bits.
	for nb := 0; nb < blocks; nb++ {
		if free.Test(nb) {
			off := m.BitOffset(nb)
			a := s.Base + pmem.PAddr(bitmapBase) + pmem.PAddr(off/8)
			s.dev.WriteU8(a, s.dev.ReadU8(a)|1<<(off%8))
		}
	}
	s.dev.WriteU32(s.Base+hClass, uint32(newClass))
	s.dev.WriteU32(s.Base+hDataOff, dataOff)
	s.dev.WriteU32(s.Base+hChecksum, headerCRC(uint32(newClass), dataOff, uint32(s.m.Stripes())))
	if persist {
		c.Flush(pmem.CatMeta, s.Base+pmem.PAddr(bitmapBase), int(dataOff-bitmapBase))
		c.Flush(pmem.CatMeta, s.Base, pmem.LineSize)
		c.Fence()
	}
	s.persistFlag(c, flagSlabIn, persist) // transformation complete

	// Install the volatile view.
	s.Class = newClass
	s.BlockSize = newBlockSize
	s.Blocks = blocks
	s.DataOff = dataOff
	s.bitmapBase = bitmapBase
	s.m = m
	s.lay = layoutFor(blocks, s.m.Stripes(), m)
	s.free = free
	s.fresh = false
	s.resBits = make([]uint64, (blocks+63)/64)
	s.Allocated = allocated
	s.OldClass = oldClass
	s.OldDataOff = oldDataOff
	s.CntSlab = len(live)
	s.oldIdx = oldIdx
	s.cntBlock = cntBlock
	s.publishGeom()
	return nil
}

// OldBlockIndex maps addr to a live old-class block index, or -1.
func (s *Slab) OldBlockIndex(addr pmem.PAddr) int {
	if s.OldClass < 0 {
		return -1
	}
	oldSize := int64(sizeclass.Size(s.OldClass))
	off := int64(addr) - int64(s.Base) - int64(s.OldDataOff)
	if off < 0 || off%oldSize != 0 {
		return -1
	}
	idx := int(off / oldSize)
	if _, ok := s.oldIdx[idx]; !ok {
		return -1
	}
	return idx
}

// OverlapCount returns how many live old-class blocks occupy new-class
// block idx (0 for regular slabs).
func (s *Slab) OverlapCount(idx int) int {
	if s.cntBlock == nil || idx < 0 || idx >= len(s.cntBlock) {
		return 0
	}
	return int(s.cntBlock[idx])
}

// OldIndices returns the live old-class block indices of a slab_in.
func (s *Slab) OldIndices() []int {
	out := make([]int, 0, len(s.oldIdx))
	for idx := range s.oldIdx {
		out = append(out, idx)
	}
	return out
}

// OldBlockSize returns the block size of the slab's old class (0 when
// the slab is not a slab_in).
func (s *Slab) OldBlockSize() uint64 {
	if s.OldClass < 0 {
		return 0
	}
	return uint64(sizeclass.Size(s.OldClass))
}

// OldBlockAddr returns the address of old-class block idx.
func (s *Slab) OldBlockAddr(idx int) pmem.PAddr {
	return s.Base + pmem.PAddr(s.OldDataOff) + pmem.PAddr(idx)*pmem.PAddr(sizeclass.Size(s.OldClass))
}

// FreeOldBlock releases a block_before: its index-table state is set to
// free and persisted, occupancy counters are updated, and any new-class
// block it exclusively occupied becomes allocatable. It reports whether
// the slab just finished morphing (no old blocks remain), in which case
// the caller reinserts it into the LRU list as a regular slab.
func (s *Slab) FreeOldBlock(c *pmem.Ctx, idx int, persist bool) (done bool, err error) {
	slot, ok := s.oldIdx[idx]
	if !ok {
		return false, fmt.Errorf("slab %#x: free of unknown old block %d", s.Base, idx)
	}
	a := s.Base + pmem.PAddr(idxBase+2*slot)
	s.dev.WriteU16(a, uint16(idx)) // allocated bit cleared
	if persist {
		c.Flush(pmem.CatMeta, a, 2)
		c.Fence()
	}
	delete(s.oldIdx, idx)
	s.CntSlab--

	oldSize := int64(sizeclass.Size(s.OldClass))
	lo := int64(s.OldDataOff) + int64(idx)*oldSize
	hi := lo + oldSize - 1
	nbLo := (lo - int64(s.DataOff)) / int64(s.BlockSize)
	nbHi := (hi - int64(s.DataOff)) / int64(s.BlockSize)
	for nb := nbLo; nb <= nbHi && nb < int64(s.Blocks); nb++ {
		if nb < 0 {
			continue
		}
		s.cntBlock[nb]--
		if s.cntBlock[nb] == 0 {
			s.FreeBlock(c, int(nb), persist)
		}
	}
	if s.CntSlab == 0 {
		// The slab_in becomes a regular slab_after. The demotion is a
		// single atomic flag commit; the old-class fields go stale but are
		// dead at flag 0 (Load ignores them entirely).
		s.persistFlag(c, flagStable, persist)
		s.OldClass = -1
		s.OldDataOff = 0
		s.oldIdx = nil
		s.cntBlock = nil
		s.publishGeom()
		return true, nil
	}
	return false, nil
}

// validateOldFields checks the old-class header fields semantically (they
// are excluded from the header checksum so that flag commits stay
// single-word). Returns the old class, data offset and live count.
func validateOldFields(dev pmem.Mem, base pmem.PAddr, stripes int) (oldClass int, oldDataOff uint32, oldLive int, err error) {
	oldClassRaw := dev.ReadU32(base + hOldClass)
	oldDataOff = dev.ReadU32(base + hOldDataOff)
	oldLive = int(dev.ReadU32(base + hOldLive))
	if oldClassRaw == ClassNone || int(oldClassRaw) >= sizeclass.NumClasses() {
		return 0, 0, 0, pmem.Corrupt("slab", base, "old class %#x out of range", oldClassRaw)
	}
	oldClass = int(oldClassRaw)
	_, _, wantOff := geometry(oldClass, stripes)
	if wantOff != oldDataOff {
		return 0, 0, 0, pmem.Corrupt("slab", base, "old data offset %d inconsistent with class %d (want %d)", oldDataOff, oldClass, wantOff)
	}
	if oldLive > IdxCapEntries {
		return 0, 0, 0, pmem.Corrupt("slab", base, "old live count %d exceeds index capacity %d", oldLive, IdxCapEntries)
	}
	return oldClass, oldDataOff, oldLive, nil
}

// Load rebuilds a vslab from the persistent image at base, undoing any
// partially completed morph (flag 1 or 2) first. Every header field is
// validated — geometry against the header checksum, old-class fields
// semantically — so a torn or corrupted image yields a CorruptError, not
// a panic or a silently wrong heap. Recovery costs are charged to c.
func Load(dev pmem.Mem, c *pmem.Ctx, base pmem.PAddr) (*Slab, error) {
	if uint64(base)+Size > dev.Size() || base%Size != 0 {
		return nil, pmem.Corrupt("slab", base, "slab extent out of device bounds or misaligned")
	}
	if dev.ReadU32(base+hMagic) != Magic {
		return nil, pmem.Corrupt("slab", base, "bad magic %#x", dev.ReadU32(base+hMagic))
	}
	flag, ok := pmem.UnsealU32(dev.ReadU32(base + hFlag))
	if !ok {
		return nil, pmem.Corrupt("slab", base+hFlag, "morph flag word fails seal check")
	}
	stripes := int(dev.ReadU32(base + hStripes))
	if stripes < 1 || stripes > 64 {
		return nil, pmem.Corrupt("slab", base, "stripe count %d out of range", stripes)
	}
	if flag > flagSlabIn {
		return nil, pmem.Corrupt("slab", base, "morph flag %d out of range", flag)
	}
	if flag == flagStep1 || flag == flagStep2 {
		if err := undoMorph(dev, c, base, flag, stripes); err != nil {
			return nil, err
		}
	}

	class := int(dev.ReadU32(base + hClass))
	dataOff := dev.ReadU32(base + hDataOff)
	if class >= sizeclass.NumClasses() {
		return nil, pmem.Corrupt("slab", base, "class %d out of range", class)
	}
	if got, want := dev.ReadU32(base+hChecksum), headerCRC(uint32(class), dataOff, uint32(stripes)); got != want {
		return nil, pmem.Corrupt("slab", base, "header checksum %#x, want %#x", got, want)
	}
	blocks, bitmapBase, wantDataOff := geometry(class, stripes)
	if wantDataOff != dataOff {
		return nil, pmem.Corrupt("slab", base, "inconsistent geometry (dataOff %d want %d)", dataOff, wantDataOff)
	}
	s := &Slab{
		Base:       base,
		Class:      class,
		BlockSize:  sizeclass.Size(class),
		Blocks:     blocks,
		DataOff:    dataOff,
		dev:        dev,
		m:          interleave.New(blocks, 1, stripes, pmem.LineSize),
		bitmapBase: bitmapBase,
		free:       bitfit.New(blocks),
		resBits:    make([]uint64, (blocks+63)/64),
		OldClass:   -1,
	}
	s.lay = layoutFor(blocks, stripes, s.m)
	// Rebuild the volatile bitmap (leaf + summary index) from the
	// persistent interleaved one.
	for idx := 0; idx < blocks; idx++ {
		off := s.m.BitOffset(idx)
		if dev.ReadU8(base+pmem.PAddr(bitmapBase)+pmem.PAddr(off/8))&(1<<(off%8)) != 0 {
			s.free.Set(idx)
			s.Allocated++
		}
	}
	c.Charge(pmem.CatSearch, int64(blocks)/8+20)

	if flag == flagSlabIn {
		// Reconstruct cnt_slab and cnt_block from the index table. At any
		// flag other than 3 the old fields are dead (a completed demotion
		// or an undone morph leaves them stale on purpose).
		oldClass, oldDataOffV, oldLive, err := validateOldFields(dev, base, stripes)
		if err != nil {
			return nil, err
		}
		oldBlocks, _, _ := geometry(oldClass, stripes)
		s.OldClass = oldClass
		s.OldDataOff = oldDataOffV
		s.oldIdx = make(map[int]int)
		s.cntBlock = make([]uint16, blocks)
		oldSize := int64(sizeclass.Size(s.OldClass))
		for slot := 0; slot < oldLive; slot++ {
			e := dev.ReadU16(base + pmem.PAddr(idxBase+2*slot))
			if e&idxAllocated == 0 {
				continue
			}
			idx := int(e & idxIndexMask)
			if idx >= oldBlocks {
				return nil, pmem.Corrupt("slab", base, "index entry %d names old block %d beyond %d", slot, idx, oldBlocks)
			}
			if _, dup := s.oldIdx[idx]; dup {
				return nil, pmem.Corrupt("slab", base, "old block %d appears twice in index table", idx)
			}
			s.oldIdx[idx] = slot
			s.CntSlab++
			lo := int64(s.OldDataOff) + int64(idx)*oldSize
			hi := lo + oldSize - 1
			nbLo := (lo - int64(dataOff)) / int64(s.BlockSize)
			nbHi := (hi - int64(dataOff)) / int64(s.BlockSize)
			for nb := nbLo; nb <= nbHi && nb < int64(blocks); nb++ {
				if nb >= 0 {
					s.cntBlock[nb]++
				}
			}
		}
		// Repair the volatile view for new blocks pinned by old-class data
		// whose bitmap bits never persisted (GC variant defers bitmap
		// flushes): they must read as unavailable or a later FreeOldBlock
		// would double-free them.
		for nb := 0; nb < blocks; nb++ {
			if s.cntBlock[nb] > 0 && !s.bitTest(nb) {
				s.free.Set(nb)
				s.Allocated++
			}
		}
		if s.CntSlab == 0 {
			// All old blocks were already freed; finish the demotion that
			// may have been cut short by the crash.
			s.persistFlag(c, flagStable, true)
			s.OldClass = -1
			s.OldDataOff = 0
			s.oldIdx = nil
			s.cntBlock = nil
		}
	}
	s.publishGeom()
	return s, nil
}

// undoMorph rolls back a morph interrupted at flag 1 or 2. At flag 1 the
// original bitmap and geometry are untouched, so clearing the flag is the
// whole undo. At flag 2 the new bitmap may be partially written, so the
// old bitmap is reconstructed from the index table (which is exactly why
// the index table exists); the restored geometry and its checksum are
// persisted while the flag still reads 2 — a crash mid-undo simply redoes
// it — and only then does a separate single-word commit clear the flag.
func undoMorph(dev pmem.Mem, c *pmem.Ctx, base pmem.PAddr, flag uint32, stripes int) error {
	oldClass, oldDataOff, oldLive, err := validateOldFields(dev, base, stripes)
	if err != nil {
		return err
	}

	if flag == flagStep2 {
		// Restore geometry and bitmap of the original class.
		blocks, bitmapBase, dataOff := geometry(oldClass, stripes)
		var live []int
		for slot := 0; slot < oldLive; slot++ {
			e := dev.ReadU16(base + pmem.PAddr(idxBase+2*slot))
			if e&idxAllocated != 0 {
				idx := int(e & idxIndexMask)
				if idx >= blocks {
					return pmem.Corrupt("slab", base, "undo: index entry %d names block %d beyond %d", slot, idx, blocks)
				}
				live = append(live, idx)
			}
		}
		sort.Ints(live)
		m := interleave.New(blocks, 1, stripes, pmem.LineSize)
		dev.Zero(base+pmem.PAddr(bitmapBase), int(dataOff-bitmapBase))
		for _, idx := range live {
			off := m.BitOffset(idx)
			a := base + pmem.PAddr(bitmapBase) + pmem.PAddr(off/8)
			dev.WriteU8(a, dev.ReadU8(a)|1<<(off%8))
		}
		dev.WriteU32(base+hClass, uint32(oldClass))
		dev.WriteU32(base+hDataOff, oldDataOff)
		dev.WriteU32(base+hChecksum, headerCRC(uint32(oldClass), oldDataOff, uint32(stripes)))
		c.Flush(pmem.CatMeta, base+pmem.PAddr(bitmapBase), int(dataOff-bitmapBase))
		c.Flush(pmem.CatMeta, base, pmem.LineSize)
		c.Fence()
	}
	// Commit the undo with a single-word flag update. The old-class fields
	// stay stale; they are dead at flag 0.
	dev.WriteU32(base+hFlag, flagStable)
	c.Flush(pmem.CatMeta, base+hFlag, 4)
	c.Fence()
	return nil
}
