package slab

import (
	"math/bits"
	"math/rand"
	"testing"

	"nvalloc/internal/sizeclass"
)

// linearReserveOne is the pre-hierarchy linear first-fit over the leaf
// words: the property tests hold Reserve to the index it would pick.
func linearReserveOne(s *Slab) int {
	words := s.free.Words()
	for w := range words {
		m := ^words[w]
		if w == len(words)-1 && s.Blocks%64 != 0 {
			m &= 1<<(s.Blocks%64) - 1
		}
		if m != 0 {
			return w*64 + bits.TrailingZeros64(m)
		}
	}
	return -1
}

// classWithPartialLastWord finds a size class whose slab block count is
// not a multiple of 64, so the hierarchy's tail masking is exercised.
func classWithPartialLastWord(t *testing.T, stripes int) int {
	t.Helper()
	for class := 0; class < sizeclass.NumClasses(); class++ {
		if b := BlocksPerSlab(class, stripes); b%64 != 0 && b > 64 {
			return class
		}
	}
	t.Skip("no class with a partial last bitmap word")
	return 0
}

func TestReservePartialLastWord(t *testing.T) {
	class := classWithPartialLastWord(t, 6)
	_, c, s := newSlab(t, class, 6)
	// Drain the whole slab through Reserve; the count handed out must be
	// exactly Blocks — one more would mean a phantom bit beyond Len, one
	// fewer a tail bit the summary lost.
	got := s.Reserve(s.Blocks+17, nil)
	if len(got) != s.Blocks {
		t.Fatalf("class %d (%d blocks): Reserve handed out %d", class, s.Blocks, len(got))
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("Reserve order: got[%d]=%d", i, idx)
		}
	}
	if extra := s.Reserve(1, nil); len(extra) != 0 {
		t.Fatalf("exhausted slab handed out block %v", extra)
	}
	// Free the very last block (tail word) and re-reserve it.
	s.Unreserve(s.Blocks - 1)
	if got := s.Reserve(1, nil); len(got) != 1 || got[0] != s.Blocks-1 {
		t.Fatalf("tail re-reserve got %v, want [%d]", got, s.Blocks-1)
	}
	_ = c
}

func TestReserveUnreserveKeepsSummaryCoherent(t *testing.T) {
	_, _, s := newSlab(t, classWithPartialLastWord(t, 6), 6)
	rng := rand.New(rand.NewSource(3))
	reserved := map[int]bool{}
	for step := 0; step < 5000; step++ {
		if len(reserved) == 0 || rng.Intn(3) > 0 {
			for _, idx := range s.Reserve(1+rng.Intn(4), nil) {
				reserved[idx] = true
			}
		} else {
			for idx := range reserved {
				s.Unreserve(idx)
				delete(reserved, idx)
				break
			}
		}
		if w := s.free.CheckSummary(); w != -1 {
			t.Fatalf("step %d: summary incoherent at leaf word %d", step, w)
		}
	}
	if got, want := s.free.FreeCount(), s.Blocks-len(reserved); got != want {
		t.Fatalf("FreeCount=%d want %d", got, want)
	}
	if s.Reserved != len(reserved) {
		t.Fatalf("Reserved=%d want %d", s.Reserved, len(reserved))
	}
}

func TestHierarchicalFirstFitMatchesLinearScan(t *testing.T) {
	_, c, s := newSlab(t, sizeclass.Class(64), 6)
	rng := rand.New(rand.NewSource(9))
	var live []int
	// Mixed Reserve/CommitAlloc/FreeBlock churn; after the first free the
	// slab leaves the bump path and every Reserve must agree with the
	// linear scan.
	for step := 0; step < 8000; step++ {
		switch {
		case len(live) == 0 || rng.Intn(5) < 3:
			want := linearReserveOne(s)
			got := s.Reserve(1, nil)
			if want < 0 {
				if len(got) != 0 {
					t.Fatalf("step %d: full slab handed out %v", step, got)
				}
				continue
			}
			if len(got) != 1 || got[0] != want {
				t.Fatalf("step %d: Reserve picked %v, linear scan %d", step, got, want)
			}
			s.CommitAlloc(c, got[0], true)
			live = append(live, got[0])
		default:
			i := rng.Intn(len(live))
			s.FreeBlock(c, live[i], true)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%211 == 0 {
			if w := s.free.CheckSummary(); w != -1 {
				t.Fatalf("step %d: summary incoherent at leaf word %d", step, w)
			}
		}
	}
}

func TestBumpPathStopsAtFirstFree(t *testing.T) {
	_, c, s := newSlab(t, sizeclass.Class(64), 6)
	if !s.fresh {
		t.Fatal("freshly formatted slab must start on the bump path")
	}
	a := s.Reserve(3, nil)
	if len(a) != 3 || a[0] != 0 || a[2] != 2 {
		t.Fatalf("bump Reserve got %v", a)
	}
	s.CommitAlloc(c, a[0], true)
	s.CommitAlloc(c, a[1], true)
	s.CommitAlloc(c, a[2], true)
	s.FreeBlock(c, a[1], true) // first free: prefix invariant broken
	if s.fresh {
		t.Fatal("fresh must clear on first free")
	}
	// First-fit must now find the freed hole below the bump pointer.
	if got := s.Reserve(1, nil); len(got) != 1 || got[0] != a[1] {
		t.Fatalf("post-free Reserve got %v, want [%d]", got, a[1])
	}
}
