// Command nvbench regenerates the tables and figures of the NVAlloc
// paper's evaluation on the simulated persistent-memory device.
//
// Usage:
//
//	nvbench -list
//	nvbench -exp fig9 [-threads 1,2,4,8,16] [-scale 1.0] [-out results/]
//	nvbench -exp all
//
// Text tables go to stdout; figures with raw series (fig2) additionally
// write CSV files under -out.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"
	"time"

	"nvalloc/internal/experiment"
)

// flagSet reports whether the named flag was given explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID (figNN, table2, ablation) or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs")
		threads  = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		scale    = flag.Float64("scale", 1.0, "operation-count scale factor")
		devMiB   = flag.Uint64("dev", 512, "simulated device size in MiB")
		out      = flag.String("out", "", "directory for CSV series (optional)")
		parallel = flag.Int("parallel", 0, "experiment cells run concurrently (0 = GOMAXPROCS, 1 = serial)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut = flag.String("trace", "", "write a runtime execution trace to this file")
		cont     = flag.Bool("contention", false, "shorthand for -exp contention (per-resource lock-load report)")
		real     = flag.Bool("real", false, "real-concurrency mode: wall-clock Larson/Threadtest/Prod-con on a direct device, with Go's runtime allocator as a calibration series (shorthand for -exp real; default -threads becomes 1..64)")
		mcBudget = flag.Int("crashmc.budget", 0, "variant schedules per concurrent crashmc family (0 = smoke default 6, negative = unlimited)")
		mcUpdate = flag.Bool("crashmc.update", false, "regenerate crashmc_baseline.json from this run (refused in CI, on violations, or on sampled runs)")
	)
	flag.Parse()
	if *cont && *exp == "" {
		*exp = "contention"
	}
	if *real {
		if *exp == "" {
			*exp = "real"
		}
		// Wall-clock scaling curves default to the full goroutine sweep.
		if !flagSet("threads") {
			*threads = "1,2,4,8,16,32,64"
		}
	}
	mcBaselineOut := ""
	if *mcUpdate {
		if os.Getenv("CI") != "" {
			fmt.Fprintln(os.Stderr, "nvbench: -crashmc.update is disabled in CI — the baseline is an input, not an output, there")
			os.Exit(2)
		}
		mcBaselineOut = "crashmc_baseline.json"
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nvbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "nvbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nvbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "nvbench:", err)
			os.Exit(1)
		}
		defer trace.Stop()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nvbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "nvbench:", err)
			}
		}()
	}

	if *list {
		for _, id := range experiment.Names() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "nvbench: -exp required (use -list to enumerate); e.g. nvbench -exp fig9")
		os.Exit(2)
	}

	var ths []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "nvbench: bad -threads %q\n", *threads)
			os.Exit(2)
		}
		ths = append(ths, n)
	}
	cfg := experiment.Config{
		Threads: ths, Scale: *scale, DeviceBytes: *devMiB << 20, Workers: *parallel,
		CrashMCSchedBudget: *mcBudget, CrashMCBaselineOut: mcBaselineOut,
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiment.Names()
	}
	for _, id := range ids {
		run, ok := experiment.Experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "nvbench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables := run(cfg)
		for ti, t := range tables {
			t.Print(os.Stdout)
			if *out == "" {
				continue
			}
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "nvbench:", err)
				os.Exit(1)
			}
			// Every table is exported as CSV for plotting; raw series
			// (Figure 2's scatter) keep their own files.
			write := func(name string, rows []string) {
				path := filepath.Join(*out, name+".csv")
				if err := os.WriteFile(path, []byte(strings.Join(rows, "\n")+"\n"), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "nvbench:", err)
					os.Exit(1)
				}
				fmt.Printf("  wrote %s (%d rows)\n", path, len(rows))
			}
			write(fmt.Sprintf("%s_table%d", id, ti), t.CSVRows())
			for name, rows := range t.CSV {
				write(name, rows)
			}
		}
		fmt.Printf("\n[%s completed in %.1fs wall time]\n", id, time.Since(start).Seconds())
	}
}
