// Command fragdemo is a quick interactive view of the fragmentation
// story: it runs Fragbench W1-W4 against a classic allocator and both
// NVAlloc variants (with and without slab morphing) and prints the peak
// memory each needs to keep the same live set.
package main

import (
	"flag"
	"fmt"
	"os"

	"nvalloc/internal/experiment"
	"nvalloc/internal/workload"
)

func main() {
	liveMiB := flag.Uint64("live", 24, "live-set bound in MiB")
	flag.Parse()

	cfg := experiment.Config{DeviceBytes: 1 << 30}
	fc := workload.FragConfig{LiveBytes: *liveMiB << 20, Threads: 1}
	names := []string{"PMDK", "Makalu", "NVAlloc-LOG w/o SM", "NVAlloc-LOG"}

	fmt.Printf("Fragbench: live set %d MiB, churn %d MiB per phase\n\n", *liveMiB, 5**liveMiB)
	fmt.Printf("%-10s", "workload")
	for _, n := range names {
		fmt.Printf("  %-20s", n)
	}
	fmt.Println()
	for _, spec := range workload.FragSpecs {
		fmt.Printf("%-10s", spec.Name)
		for _, name := range names {
			h, err := experiment.OpenHeap(name, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fragdemo:", err)
				os.Exit(1)
			}
			r := workload.Fragbench(h, spec, fc)
			fmt.Printf("  %-20s", fmt.Sprintf("%.1f MiB (%.2fx)",
				float64(r.PeakBytes)/(1<<20), float64(r.PeakBytes)/float64(fc.LiveBytes)))
		}
		fmt.Println()
	}
	fmt.Println("\nPeak divided by live set: lower is better; 1.0x is perfect.")
}
