// Command nvstat inspects an NVAlloc heap image (the pmempool of this
// repository): it prints the superblock, per-size-class slab population
// and utilization, large-extent statistics, bookkeeping-log state and the
// live object count, either for a freshly generated demo heap or for an
// image file previously written with Device.SaveImage.
//
// Usage:
//
//	nvstat -demo                # build a demo heap and inspect it
//	nvstat -image heap.img -size 268435456
//	nvstat -image heap.img -check     # report corruption, modify nothing
//	nvstat -image heap.img -repair    # scavenge in place, rewrite image
//	nvstat -heap nvkv.heap            # inspect an nvkv server's heap file
//
// -heap loads the mmap'd device file behind `nvkv serve` (size inferred
// from the file itself); since a kill -9'd server leaves a dirty state
// flag, the open performs crash recovery before inspection, and -check /
// -repair work on heap files the same way they do on images.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"nvalloc"
	"nvalloc/internal/core"
	"nvalloc/internal/sizeclass"
)

func main() {
	var (
		image    = flag.String("image", "", "heap image file written by Device.SaveImage")
		heapFile = flag.String("heap", "", "nvkv heap file (direct-device mmap file; size inferred)")
		size     = flag.Uint64("size", 256<<20, "device size in bytes (must match the image)")
		demo     = flag.Bool("demo", false, "generate a demo heap instead of loading an image")
		check    = flag.Bool("check", false, "report corruption in the image without modifying it")
		repair   = flag.Bool("repair", false, "scavenge the image in place and rewrite it")
	)
	flag.Parse()

	// A direct-device heap file is byte-identical to a saved image, so
	// -heap is -image with the device sized from the file itself.
	path := *image
	if *heapFile != "" {
		if *image != "" {
			fmt.Fprintln(os.Stderr, "nvstat: -image and -heap are mutually exclusive")
			os.Exit(2)
		}
		st, err := os.Stat(*heapFile)
		if err != nil {
			fatal(err)
		}
		path = *heapFile
		*size = uint64(st.Size())
	}

	dev := nvalloc.NewDevice(nvalloc.DeviceConfig{Size: *size})
	var heap *nvalloc.Heap
	switch {
	case *demo:
		heap = buildDemo(dev)
	case path != "":
		if err := dev.LoadImage(path); err != nil {
			fatal(err)
		}
		switch {
		case *check:
			os.Exit(runCheck(dev))
		case *repair:
			heap = runRepair(dev, path)
		default:
			h, ns, err := nvalloc.Open(dev, nvalloc.Options{})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("opened image %s (recovery: %.2f ms virtual)\n\n", path, float64(ns)/1e6)
			heap = h
		}
	default:
		fmt.Fprintln(os.Stderr, "nvstat: need -demo, -image <file> or -heap <file>")
		os.Exit(2)
	}

	inspect(heap)
}

// runCheck reports every problem a scavenge would repair (on a clone of
// the device — the loaded image is never modified). Exit status 0 means
// the image opens cleanly, 1 means it needs repair.
func runCheck(dev *nvalloc.Device) int {
	issues := nvalloc.Check(dev, nvalloc.Options{})
	if len(issues) == 0 {
		fmt.Println("image is clean")
		return 0
	}
	fmt.Printf("image is damaged (%d issue(s)):\n", len(issues))
	for _, s := range issues {
		fmt.Println("  -", s)
	}
	return 1
}

// runRepair scavenges the device in place and rewrites the image file,
// then returns the repaired heap for inspection.
func runRepair(dev *nvalloc.Device, image string) *nvalloc.Heap {
	h, repairs, err := nvalloc.Scavenge(dev, nvalloc.Options{})
	for _, s := range repairs {
		fmt.Println("repair:", s)
	}
	if err != nil {
		fatal(err)
	}
	if len(repairs) == 0 {
		fmt.Println("image was clean; nothing repaired")
	} else if err := dev.SaveImage(image); err != nil {
		fatal(err)
	} else {
		fmt.Printf("repaired image rewritten to %s\n\n", image)
	}
	return h
}

func buildDemo(dev *nvalloc.Device) *nvalloc.Heap {
	heap, err := nvalloc.Create(dev, nvalloc.Options{Variant: nvalloc.IC})
	if err != nil {
		fatal(err)
	}
	th := heap.NewThread()
	defer th.Close()
	for i := 0; i < 20000; i++ {
		p, err := th.Malloc(uint64(16 + i%800))
		if err != nil {
			fatal(err)
		}
		if i%3 == 0 {
			if err := th.Free(p); err != nil {
				fatal(err)
			}
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := th.Malloc(256 << 10); err != nil {
			fatal(err)
		}
	}
	fmt.Println("generated demo heap (NVAlloc-IC)")
	return heap
}

func inspect(heap *nvalloc.Heap) {
	opts := heap.Options()
	fmt.Printf("variant:          %v\n", opts.Variant)
	fmt.Printf("arenas:           %d\n", opts.Arenas)
	fmt.Printf("stripes:          %d (bitmap IM %v, tcache IM %v, WAL IM %v)\n",
		opts.Stripes, opts.InterleaveBitmap, opts.InterleaveTcache, opts.InterleaveWAL)
	fmt.Printf("slab morphing:    %v (SU %.0f%%)\n", opts.Morphing, opts.SU*100)
	fmt.Printf("bookkeeping:      log=%v\n", opts.LogBookkeeping)
	fmt.Printf("used:             %.1f MiB (peak %.1f MiB, lease overhead %.1f MiB)\n",
		float64(heap.Used())/(1<<20), float64(heap.Peak())/(1<<20),
		float64(heap.LeaseOverhead())/(1<<20))
	splits, coalesces, grows := heap.LargeStats()
	fmt.Printf("extent ops:       %d splits, %d coalesces, %d chunk grows\n", splits, coalesces, grows)
	morphs, refusals := heap.MorphStats()
	fmt.Printf("morphs:           %d (refused candidates: %d)\n", morphs, refusals)
	if bl := heap.Blog(); bl != nil {
		fast, slow := bl.GCCounts()
		fmt.Printf("bookkeeping log:  %d live entries, %d active chunks, %d free; GC fast=%d slow=%d\n",
			bl.Live(), bl.ActiveChunks(), bl.FreeChunks(), fast, slow)
	}
	b := heap.SlabUtilization()
	fmt.Printf("slab utilization: %d slabs <30%%, %d in 30-70%%, %d >70%%\n", b[0], b[1], b[2])

	// Live-object census via the internal-collection iterator.
	type classStat struct {
		count int
		bytes uint64
	}
	perSize := map[uint64]*classStat{}
	var objects, largeObjects int
	var liveBytes uint64
	heap.Objects(func(o core.Object) bool {
		objects++
		liveBytes += o.Size
		if !o.Slab {
			largeObjects++
		}
		cs := perSize[o.Size]
		if cs == nil {
			cs = &classStat{}
			perSize[o.Size] = cs
		}
		cs.count++
		cs.bytes += o.Size
		return true
	})
	fmt.Printf("live objects:     %d (%d large), %.1f MiB payload\n\n",
		objects, largeObjects, float64(liveBytes)/(1<<20))

	var sizes []uint64
	for s := range perSize {
		sizes = append(sizes, s)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	fmt.Printf("%-12s %-10s %-12s\n", "size", "objects", "bytes")
	for _, s := range sizes {
		cs := perSize[s]
		fmt.Printf("%-12d %-10d %-12d\n", s, cs.count, cs.bytes)
	}
	_ = sizeclass.NumClasses()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvstat:", err)
	os.Exit(1)
}
