// Command nvkv runs the network-facing persistent KV service and its
// load tooling.
//
//	nvkv serve -addr :7070 -heap kv.heap -size 256M
//	    Serve the RESP-like protocol from an NVAlloc heap on a direct
//	    (real-concurrency) device. With -heap the device is an mmap'd
//	    file: acknowledged writes survive kill -9, and a restart
//	    recovers the store from the file. Without -heap the heap lives
//	    in anonymous memory (throwaway).
//
//	nvkv bench -addr 127.0.0.1:7070 -users 1000000
//	    Drive the synthetic traffic engine (zipfian keys, per-user
//	    sessions, burst phases) and report per-op latency percentiles.
//
//	nvkv smoke -users 1000000 -out BENCH_pr10.json
//	    The self-contained crash drill: spawn a serve child on a heap
//	    file, push traffic, kill -9 mid-burst, restart, measure
//	    recovery time, and verify the acknowledged-durability oracle
//	    over every settled key. Exits non-zero on any lost or
//	    resurrected acknowledgement.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
	"nvalloc/internal/nvkv"
	"nvalloc/internal/pmem"
	"nvalloc/internal/traffic"
)

const rootSlot = 0

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		cmdServe(os.Args[2:])
	case "bench":
		cmdBench(os.Args[2:])
	case "smoke":
		cmdSmoke(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: nvkv serve|bench|smoke [flags]\n")
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nvkv: "+format+"\n", args...)
	os.Exit(1)
}

// parseSize accepts 123, 64K, 16M, 1G.
func parseSize(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	n, err := strconv.ParseUint(s, 10, 64)
	return n * mult, err
}

// openOrCreate attaches a store to a direct device: a heap file that
// already held a heap is recovered (core.Open), anything else is
// formatted fresh. It reports the recovery wall time for reopens.
func openOrCreate(path string, size uint64) (alloc.Heap, *nvkv.Store, time.Duration, error) {
	existed := false
	if path != "" {
		if st, err := os.Stat(path); err == nil && st.Size() > 0 {
			existed = true
		}
	}
	dev, err := pmem.NewDirect(pmem.DirectConfig{Size: size, Path: path})
	if err != nil {
		return nil, nil, 0, err
	}
	if existed {
		start := time.Now()
		h, _, err := core.Open(dev, core.DefaultOptions(core.LOG))
		if err != nil {
			return nil, nil, 0, fmt.Errorf("recover heap %s: %w", path, err)
		}
		st, err := nvkv.OpenStore(h, rootSlot, nvkv.StoreConfig{})
		if err != nil {
			return nil, nil, 0, fmt.Errorf("recover store: %w", err)
		}
		return h, st, time.Since(start), nil
	}
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		return nil, nil, 0, err
	}
	th := h.NewThread()
	st, err := nvkv.CreateStore(h, th, rootSlot, nvkv.StoreConfig{})
	th.Close()
	if err != nil {
		return nil, nil, 0, err
	}
	return h, st, 0, nil
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	heapPath := fs.String("heap", "", "heap file (mmap'd; empty = anonymous memory)")
	sizeStr := fs.String("size", "256M", "device size")
	snapshot := fs.String("snapshot", "", "enable SNAPSHOT, writing the image here")
	fs.Parse(args)
	size, err := parseSize(*sizeStr)
	if err != nil {
		fatalf("bad -size: %v", err)
	}

	_, store, recovery, err := openOrCreate(*heapPath, size)
	if err != nil {
		fatalf("%v", err)
	}
	if recovery > 0 {
		fmt.Printf("nvkv: recovered %d keys in %dns\n", store.Len(), recovery.Nanoseconds())
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	srv := nvkv.NewServer(store, nvkv.ServerConfig{SnapshotPath: *snapshot})
	// The parent (smoke) parses this line for the chosen port; keep the
	// format stable.
	fmt.Printf("nvkv: listening on %s\n", l.Addr())
	os.Stdout.Sync()
	if err := srv.Serve(l); err != nil {
		fatalf("serve: %v", err)
	}
}

// latencies flattens a histogram for reports.
func latencies(h *traffic.Hist) map[string]any {
	return map[string]any{
		"count":   h.Count(),
		"mean_ns": uint64(h.Mean()),
		"p50_ns":  h.P50(),
		"p99_ns":  h.P99(),
		"p999_ns": h.P999(),
		"max_ns":  h.Max(),
	}
}

func printReport(rep *traffic.Report, elapsed time.Duration) {
	fmt.Printf("sessions %d  ops %d  (%.0f ops/s)  disconnects %d  errors %d\n",
		rep.Sessions, rep.Ops, float64(rep.Ops)/elapsed.Seconds(), rep.Disconnects, rep.Errors)
	names := []string{"GET", "SET", "DEL", "EXPIRE"}
	for k, name := range names {
		h := &rep.PerOp[k]
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("%-7s n=%-9d p50=%-8s p99=%-8s p999=%-8s max=%s\n",
			name, h.Count(),
			time.Duration(h.P50()), time.Duration(h.P99()),
			time.Duration(h.P999()), time.Duration(h.Max()))
	}
}

func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	users := fs.Uint64("users", 1_000_000, "simulated user sessions")
	conns := fs.Int("conns", 8, "connections")
	pipeline := fs.Int("pipeline", 128, "commands in flight per connection")
	keys := fs.Uint64("keys", 1<<16, "key universe")
	seed := fs.Uint64("seed", 1, "workload seed")
	out := fs.String("out", "", "write a JSON report here")
	fs.Parse(args)

	eng := traffic.New(traffic.Config{
		Addr: *addr, Conns: *conns, Pipeline: *pipeline,
		Users: *users, Keys: *keys, Seed: *seed,
	})
	start := time.Now()
	rep, err := eng.Run()
	elapsed := time.Since(start)
	if err != nil {
		fatalf("bench: %v", err)
	}
	printReport(rep, elapsed)
	if *out != "" {
		writeJSON(*out, benchJSON(rep, elapsed, nil))
	}
}

func benchJSON(rep *traffic.Report, elapsed time.Duration, extra map[string]any) map[string]any {
	out := map[string]any{
		"sessions":    rep.Sessions,
		"ops":         rep.Ops,
		"elapsed_ns":  elapsed.Nanoseconds(),
		"ops_per_sec": float64(rep.Ops) / elapsed.Seconds(),
		"disconnects": rep.Disconnects,
		"errors":      rep.Errors,
		"all":         latencies(&rep.All),
		"get":         latencies(&rep.PerOp[traffic.OpGet]),
		"set":         latencies(&rep.PerOp[traffic.OpSet]),
		"del":         latencies(&rep.PerOp[traffic.OpDel]),
		"expire":      latencies(&rep.PerOp[traffic.OpExpire]),
	}
	for k, v := range extra {
		out[k] = v
	}
	return out
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatalf("marshal %s: %v", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
}

// child is one spawned serve process.
type child struct {
	cmd  *exec.Cmd
	addr string
	// recoveryNS is parsed from the child's startup banner (0 on fresh
	// creation).
	recoveryNS int64
	// ready is the exec-to-listening wall time.
	ready time.Duration
}

// spawnServe starts `nvkv serve` and waits for its listening banner.
func spawnServe(self, addr, heap, size string) (*child, error) {
	cmd := exec.Command(self, "serve", "-addr", addr, "-heap", heap, "-size", size)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	c := &child{cmd: cmd}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		fmt.Printf("  [serve] %s\n", line)
		if _, rest, ok := strings.Cut(line, "recovered "); ok {
			if _, ns, ok := strings.Cut(rest, " in "); ok {
				c.recoveryNS, _ = strconv.ParseInt(strings.TrimSuffix(ns, "ns"), 10, 64)
			}
		}
		if _, rest, ok := strings.Cut(line, "listening on "); ok {
			c.addr = rest
			c.ready = time.Since(start)
			// Leave the rest of the child's stdout unread; it prints
			// nothing further during normal serving.
			go func() {
				for sc.Scan() {
				}
			}()
			return c, nil
		}
	}
	cmd.Wait()
	return nil, fmt.Errorf("serve child exited before listening")
}

func (c *child) kill() {
	if c.cmd.Process != nil {
		c.cmd.Process.Signal(syscall.SIGKILL)
		c.cmd.Wait()
	}
}

func cmdSmoke(args []string) {
	fs := flag.NewFlagSet("smoke", flag.ExitOnError)
	users := fs.Uint64("users", 1_000_000, "simulated user sessions")
	conns := fs.Int("conns", 8, "connections")
	pipeline := fs.Int("pipeline", 128, "commands in flight per connection")
	keys := fs.Uint64("keys", 1<<16, "key universe")
	seed := fs.Uint64("seed", 1, "workload seed")
	sizeStr := fs.String("size", "512M", "heap device size")
	killFrac := fs.Float64("kill-at", 0.45, "kill -9 the server at this fraction of sessions")
	killAfter := fs.Duration("kill-after", 10*time.Second, "kill deadline if the fraction is not reached")
	dir := fs.String("dir", "", "working directory (default: a temp dir)")
	out := fs.String("out", "BENCH_pr10.json", "JSON report path")
	fs.Parse(args)

	self, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	workDir := *dir
	if workDir == "" {
		workDir, err = os.MkdirTemp("", "nvkv-smoke-*")
		if err != nil {
			fatalf("%v", err)
		}
		defer os.RemoveAll(workDir)
	}
	heapFile := filepath.Join(workDir, "nvkv.heap")

	fmt.Printf("nvkv smoke: %d sessions, kill -9 at %.0f%% (or %s), heap %s\n",
		*users, *killFrac*100, *killAfter, heapFile)

	// Phase 1: fresh server on an auto-picked port.
	srv, err := spawnServe(self, "127.0.0.1:0", heapFile, *sizeStr)
	if err != nil {
		fatalf("spawn: %v", err)
	}
	defer srv.kill()

	eng := traffic.New(traffic.Config{
		Addr: srv.addr, Conns: *conns, Pipeline: *pipeline,
		Users: *users, Keys: *keys, Seed: *seed, TrackAcks: true,
	})
	engDone := make(chan struct{})
	var rep *traffic.Report
	var engErr error
	start := time.Now()
	go func() {
		rep, engErr = eng.Run()
		close(engDone)
	}()

	// Phase 2: kill -9 mid-burst.
	killTarget := uint64(float64(*users) * *killFrac)
	deadline := time.After(*killAfter)
wait:
	for {
		select {
		case <-engDone:
			fatalf("traffic finished before the kill point — raise -users or -kill-at")
		case <-deadline:
			break wait
		case <-time.After(20 * time.Millisecond):
			if eng.Sessions() >= killTarget {
				break wait
			}
		}
	}
	killedAt := eng.Sessions()
	fmt.Printf("nvkv smoke: kill -9 at %d sessions, %d ops acked\n", killedAt, eng.Ops())
	srv.kill()

	// Phase 3: restart on the same port; traffic workers are redialing.
	restart, err := spawnServe(self, srv.addr, heapFile, *sizeStr)
	if err != nil {
		fatalf("restart: %v", err)
	}
	defer restart.kill()
	fmt.Printf("nvkv smoke: restarted in %s (in-process recovery %s)\n",
		restart.ready, time.Duration(restart.recoveryNS))

	<-engDone
	elapsed := time.Since(start)
	if engErr != nil {
		fatalf("traffic: %v", engErr)
	}
	printReport(rep, elapsed)

	// Phase 4: the durability oracle over every settled key.
	conn, err := net.Dial("tcp", restart.addr)
	if err != nil {
		fatalf("oracle dial: %v", err)
	}
	checked, skipped, err := traffic.VerifyAcked(conn, rep.Acked, rep.Tainted)
	conn.Close()
	if err != nil {
		fatalf("DURABILITY VIOLATION: %v", err)
	}
	fmt.Printf("nvkv smoke: oracle OK — %d keys verified, %d skipped (in-flight at kill or TTL'd), %d tainted\n",
		checked, skipped, len(rep.Tainted))

	writeJSON(*out, benchJSON(rep, elapsed, map[string]any{
		"killed_at_sessions": killedAt,
		"restart_ns":         restart.ready.Nanoseconds(),
		"recovery_ns":        restart.recoveryNS,
		"oracle_checked":     checked,
		"oracle_skipped":     skipped,
		"oracle_tainted":     len(rep.Tainted),
	}))
	fmt.Printf("nvkv smoke: report written to %s\n", *out)
}
