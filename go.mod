module nvalloc

go 1.22
